module Codec = Lfs_util.Bytes_codec

type t = {
  layout : Layout.t;
  mutable map : int array;        (* file block -> disk address *)
  mutable capacity_used : int;    (* indices >= this are all nil *)
  mutable single_addr : Types.baddr;
  mutable l2_addr : Types.baddr;
  mutable l1_addrs : int array;   (* chunk -> on-disk L1 block address *)
  mutable single_dirty : bool;
  mutable l2_dirty : bool;
  mutable l1_dirty : bool array;
}

let sblockno_single = -2
let sblockno_l2 = -3
let sblockno_l1 c = -(4 + c)

let classify_sblockno n =
  if n >= 0 then `Data n
  else if n = sblockno_single then `Single
  else if n = sblockno_l2 then `L2
  else `L1 (-n - 4)

let k t = t.layout.Layout.addrs_per_block

(* File-block index ranges: [0, 10) direct, [10, 10+K) single-indirect,
   [10+K, 10+K+K*K) double-indirect (chunk c covers K blocks each). *)
let chunk_of_index t i =
  let k = k t in
  if i < Inode.ndirect then `Direct
  else if i < Inode.ndirect + k then `Single
  else `L1 ((i - Inode.ndirect - k) / k)

let decode_addrs b =
  let n = Bytes.length b / 8 in
  Array.init n (fun i -> Int64.to_int (Bytes.get_int64_le b (i * 8)))

let encode_addrs layout addrs lo hi =
  let b = Bytes.make layout.Layout.block_size '\000' in
  let n = Array.length addrs in
  for i = lo to hi - 1 do
    let v = if i < n then addrs.(i) else Types.nil_addr in
    Bytes.set_int64_le b ((i - lo) * 8) (Int64.of_int v)
  done;
  (* Slots past the mapped range must read back as nil, not 0. *)
  for i = max lo n to hi - 1 do
    Bytes.set_int64_le b ((i - lo) * 8) (Int64.of_int Types.nil_addr)
  done;
  b

let create_empty layout _inode =
  {
    layout;
    map = [||];
    capacity_used = 0;
    single_addr = Types.nil_addr;
    l2_addr = Types.nil_addr;
    l1_addrs = [||];
    single_dirty = false;
    l2_dirty = false;
    l1_dirty = [||];
  }

let ensure_map t n =
  let cap = Array.length t.map in
  if n > cap then begin
    let maxb = Layout.max_file_blocks t.layout in
    if n > maxb then Types.fs_error "file too large: %d blocks (max %d)" n maxb;
    let cap' = min maxb (max n (max 16 (2 * cap))) in
    let m = Array.make cap' Types.nil_addr in
    Array.blit t.map 0 m 0 cap;
    t.map <- m
  end

let ensure_chunks t c =
  let cap = Array.length t.l1_addrs in
  if c >= cap then begin
    let cap' = max (c + 1) (max 4 (2 * cap)) in
    let a = Array.make cap' Types.nil_addr in
    Array.blit t.l1_addrs 0 a 0 cap;
    t.l1_addrs <- a;
    let d = Array.make cap' false in
    Array.blit t.l1_dirty 0 d 0 cap;
    t.l1_dirty <- d
  end

let load ~read layout (inode : Inode.t) =
  let t = create_empty layout inode in
  let kk = layout.Layout.addrs_per_block in
  ensure_map t (Inode.nblocks ~block_size:layout.Layout.block_size inode);
  for i = 0 to Inode.ndirect - 1 do
    if inode.Inode.direct.(i) <> Types.nil_addr then begin
      ensure_map t (i + 1);
      t.map.(i) <- inode.Inode.direct.(i);
      t.capacity_used <- max t.capacity_used (i + 1)
    end
  done;
  t.single_addr <- inode.Inode.indirect;
  if t.single_addr <> Types.nil_addr then begin
    let entries = decode_addrs (read t.single_addr) in
    ensure_map t (Inode.ndirect + kk);
    Array.iteri
      (fun j a ->
        if a <> Types.nil_addr then begin
          t.map.(Inode.ndirect + j) <- a;
          t.capacity_used <- max t.capacity_used (Inode.ndirect + j + 1)
        end)
      entries
  end;
  t.l2_addr <- inode.Inode.dindirect;
  if t.l2_addr <> Types.nil_addr then begin
    let l1s = decode_addrs (read t.l2_addr) in
    Array.iteri
      (fun c l1 ->
        if l1 <> Types.nil_addr then begin
          ensure_chunks t c;
          t.l1_addrs.(c) <- l1;
          let base = Inode.ndirect + kk + (c * kk) in
          let entries = decode_addrs (read l1) in
          ensure_map t (base + kk);
          Array.iteri
            (fun j a ->
              if a <> Types.nil_addr then begin
                t.map.(base + j) <- a;
                t.capacity_used <- max t.capacity_used (base + j + 1)
              end)
            entries
        end)
      l1s
  end;
  t

let get t i =
  if i < 0 then invalid_arg "Filemap.get: negative index";
  if i >= Array.length t.map then Types.nil_addr else t.map.(i)

let set t i addr =
  if i < 0 then invalid_arg "Filemap.set: negative index";
  ensure_map t (i + 1);
  t.map.(i) <- addr;
  t.capacity_used <- max t.capacity_used (i + 1);
  match chunk_of_index t i with
  | `Direct -> ()  (* direct pointers live in the inode, rewritten anyway *)
  | `Single -> t.single_dirty <- true
  | `L1 c ->
      ensure_chunks t c;
      t.l1_dirty.(c) <- true

let mapped_blocks t = t.capacity_used

let iter_mapped t f =
  for i = 0 to t.capacity_used - 1 do
    if t.map.(i) <> Types.nil_addr then f i t.map.(i)
  done

let indirect_blocks t =
  let acc = ref [] in
  if t.single_addr <> Types.nil_addr then
    acc := (sblockno_single, t.single_addr) :: !acc;
  if t.l2_addr <> Types.nil_addr then acc := (sblockno_l2, t.l2_addr) :: !acc;
  Array.iteri
    (fun c a -> if a <> Types.nil_addr then acc := (sblockno_l1 c, a) :: !acc)
    t.l1_addrs;
  List.rev !acc

let indirect_addr t ~sblockno =
  match classify_sblockno sblockno with
  | `Data _ -> invalid_arg "Filemap.indirect_addr: data block position"
  | `Single -> t.single_addr
  | `L2 -> t.l2_addr
  | `L1 c -> if c < Array.length t.l1_addrs then t.l1_addrs.(c) else Types.nil_addr

let mark_indirect_dirty t ~sblockno =
  match classify_sblockno sblockno with
  | `Data _ -> invalid_arg "Filemap.mark_indirect_dirty: data block position"
  | `Single -> if t.single_addr <> Types.nil_addr then t.single_dirty <- true
  | `L2 -> if t.l2_addr <> Types.nil_addr then t.l2_dirty <- true
  | `L1 c ->
      if c < Array.length t.l1_addrs && t.l1_addrs.(c) <> Types.nil_addr then
        t.l1_dirty.(c) <- true

let truncate t ~blocks ~free =
  for i = blocks to t.capacity_used - 1 do
    if t.map.(i) <> Types.nil_addr then begin
      free t.map.(i);
      (match chunk_of_index t i with
      | `Direct -> ()
      | `Single -> t.single_dirty <- true
      | `L1 c ->
          ensure_chunks t c;
          t.l1_dirty.(c) <- true);
      t.map.(i) <- Types.nil_addr
    end
  done;
  t.capacity_used <- min t.capacity_used blocks

let dirty t =
  t.single_dirty || t.l2_dirty || Array.exists (fun d -> d) t.l1_dirty

let range_all_nil t lo hi =
  let result = ref true in
  for i = lo to min hi (Array.length t.map) - 1 do
    if t.map.(i) <> Types.nil_addr then result := false
  done;
  !result

let flush t (inode : Inode.t) ~alloc ~free =
  let kk = k t in
  (* Direct pointers: always refresh (the inode is being rewritten). *)
  for i = 0 to Inode.ndirect - 1 do
    inode.Inode.direct.(i) <- get t i
  done;
  if t.single_dirty then begin
    let lo = Inode.ndirect and hi = Inode.ndirect + kk in
    let old = t.single_addr in
    let fresh =
      if range_all_nil t lo hi then Types.nil_addr
      else
        alloc ~kind:Types.Indirect ~blockno:sblockno_single
          (encode_addrs t.layout t.map lo hi)
    in
    if old <> Types.nil_addr then free old;
    t.single_addr <- fresh;
    t.single_dirty <- false
  end;
  inode.Inode.indirect <- t.single_addr;
  (* L1 chunks under the double-indirect block. *)
  Array.iteri
    (fun c is_dirty ->
      if is_dirty then begin
        let lo = Inode.ndirect + kk + (c * kk) in
        let hi = lo + kk in
        let old = t.l1_addrs.(c) in
        let fresh =
          if range_all_nil t lo hi then Types.nil_addr
          else
            alloc ~kind:Types.Indirect ~blockno:(sblockno_l1 c)
              (encode_addrs t.layout t.map lo hi)
        in
        if old <> Types.nil_addr then free old;
        if old <> fresh then t.l2_dirty <- true;
        t.l1_addrs.(c) <- fresh;
        t.l1_dirty.(c) <- false
      end)
    t.l1_dirty;
  if t.l2_dirty then begin
    let old = t.l2_addr in
    let any_l1 = Array.exists (fun a -> a <> Types.nil_addr) t.l1_addrs in
    let fresh =
      if not any_l1 then Types.nil_addr
      else begin
        let b = Bytes.make t.layout.Layout.block_size '\000' in
        for i = 0 to kk - 1 do
          let v =
            if i < Array.length t.l1_addrs then t.l1_addrs.(i)
            else Types.nil_addr
          in
          Bytes.set_int64_le b (i * 8) (Int64.of_int v)
        done;
        alloc ~kind:Types.Dindirect ~blockno:sblockno_l2 b
      end
    in
    if old <> Types.nil_addr then free old;
    t.l2_addr <- fresh;
    t.l2_dirty <- false
  end;
  inode.Inode.dindirect <- t.l2_addr
