(** The directory operation log (Section 4.2).

    Each directory mutation is recorded here and the record is guaranteed
    to reach the log before the corresponding directory block or inode.
    Roll-forward uses the records to restore consistency between
    directory entries and inode reference counts, and they make rename
    atomic across crashes. *)

type record =
  | Add of {
      dir : Types.ino;
      name : string;
      ino : Types.ino;
      nlink : int;
      fresh : bool;
    }
      (** create or link: entry [name -> ino] added to [dir]; the
          inode's reference count after the operation is [nlink].
          [fresh] marks a newly allocated inode (create/mkdir) as
          opposed to a link to an existing one — roll-forward needs the
          distinction to tell incarnations of a reused inode number
          apart *)
  | Remove of { dir : Types.ino; name : string; ino : Types.ino; nlink : int }
      (** unlink: entry removed; [nlink = 0] means the file dies *)
  | Rename of {
      odir : Types.ino;
      oname : string;
      ndir : Types.ino;
      nname : string;
      ino : Types.ino;
    }  (** atomic move of [ino] from [odir/oname] to [ndir/nname] *)

val encode_blocks : block_size:int -> record list -> bytes list
(** Pack records into as many dir-log blocks as needed (order
    preserved). *)

val decode_block : bytes -> record list
(** Raises {!Types.Corrupt} on malformed content. *)

val pp_record : Format.formatter -> record -> unit
