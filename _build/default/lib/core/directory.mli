(** Directory contents.

    A directory is an ordinary file whose data is a serialised list of
    [(name, inode)] entries; it flows through the same cache, log and
    cleaner as any file.  Names are unique within a directory, non-empty,
    at most {!max_name} bytes and must not contain ['/'] or NUL. *)

type t
(** Parsed in-memory entry list. *)

val max_name : int

val empty : t
val of_bytes : bytes -> t
(** Raises {!Types.Corrupt} on malformed content. *)

val to_bytes : t -> bytes
val is_empty : t -> bool
val cardinal : t -> int
val find : t -> string -> Types.ino option
val mem : t -> string -> bool

val add : t -> string -> Types.ino -> t
(** Raises {!Types.Fs_error} if the name already exists. *)

val remove : t -> string -> t
(** Raises {!Types.Fs_error} if the name is absent. *)

val replace : t -> string -> Types.ino -> t
(** Add-or-overwrite, used by recovery's ensure-style fixes. *)

val entries : t -> (string * Types.ino) list
(** In insertion order. *)

val check_name : string -> unit
(** Validate a file name; raises {!Types.Fs_error} on bad names. *)
