module Codec = Lfs_util.Bytes_codec

type t = {
  layout : Layout.t;
  locations : int array;   (* Iaddr.to_int; -1 = free *)
  versions : int array;
  atimes : float array;
  block_addrs : int array; (* map-block index -> current log address *)
  dirty : bool array;      (* per map block *)
  mutable alloc_hint : int;
}

let entries_per_block t = t.layout.Layout.imap_entries_per_block

let create layout =
  let n = layout.Layout.max_inodes in
  {
    layout;
    locations = Array.make n (Types.Iaddr.to_int Types.Iaddr.nil);
    versions = Array.make n 0;
    atimes = Array.make n 0.0;
    block_addrs = Array.make layout.Layout.imap_blocks Types.nil_addr;
    dirty = Array.make layout.Layout.imap_blocks true;
    alloc_hint = Types.root_ino;
  }

let max_inodes t = t.layout.Layout.max_inodes

let check_ino t ino =
  if ino < 0 || ino >= max_inodes t then
    Types.fs_error "inode number %d out of range [0, %d)" ino (max_inodes t)

let location t ino =
  check_ino t ino;
  Types.Iaddr.of_int t.locations.(ino)

let version t ino =
  check_ino t ino;
  t.versions.(ino)

let atime t ino =
  check_ino t ino;
  t.atimes.(ino)

let is_allocated t ino = not (Types.Iaddr.is_nil (location t ino))

let block_of_ino t ino = ino / entries_per_block t

let mark_block_dirty t i = t.dirty.(i) <- true
let clear_block_dirty t i = t.dirty.(i) <- false
let mark_ino_dirty t ino = mark_block_dirty t (block_of_ino t ino)

let set_location t ino iaddr =
  check_ino t ino;
  t.locations.(ino) <- Types.Iaddr.to_int iaddr;
  mark_ino_dirty t ino

let set_atime t ino time =
  check_ino t ino;
  t.atimes.(ino) <- time;
  mark_ino_dirty t ino

let allocate t =
  let n = max_inodes t in
  let rec scan tried ino =
    if tried >= n then Types.fs_error "inode map full (%d inodes)" n
    else
      let ino = if ino >= n then Types.root_ino else ino in
      if Types.Iaddr.is_nil (Types.Iaddr.of_int t.locations.(ino)) then begin
        t.alloc_hint <- ino + 1;
        ino
      end
      else scan (tried + 1) (ino + 1)
  in
  scan 0 (max Types.root_ino t.alloc_hint)

let free t ino =
  check_ino t ino;
  t.locations.(ino) <- Types.Iaddr.to_int Types.Iaddr.nil;
  t.versions.(ino) <- t.versions.(ino) + 1;
  if ino < t.alloc_hint then t.alloc_hint <- ino;
  mark_ino_dirty t ino

let bump_version t ino =
  check_ino t ino;
  t.versions.(ino) <- t.versions.(ino) + 1;
  mark_ino_dirty t ino

let block_addr t i = t.block_addrs.(i)
let set_block_addr t i addr = t.block_addrs.(i) <- addr
let nblocks t = Array.length t.block_addrs

let dirty_blocks t =
  let acc = ref [] in
  for i = Array.length t.dirty - 1 downto 0 do
    if t.dirty.(i) then acc := i :: !acc
  done;
  !acc

let encode_block t i =
  let b = Bytes.make t.layout.Layout.block_size '\000' in
  let c = Codec.writer b in
  let lo = i * entries_per_block t in
  let hi = min (lo + entries_per_block t) (max_inodes t) in
  for ino = lo to hi - 1 do
    Codec.put_int c t.locations.(ino);
    Codec.put_u32 c t.versions.(ino);
    Codec.put_u32 c 0;
    Codec.put_float c t.atimes.(ino)
  done;
  b

let decode_block t i b =
  let c = Codec.reader b in
  let lo = i * entries_per_block t in
  let hi = min (lo + entries_per_block t) (max_inodes t) in
  for ino = lo to hi - 1 do
    t.locations.(ino) <- Codec.get_int c;
    t.versions.(ino) <- Codec.get_u32 c;
    ignore (Codec.get_u32 c);
    t.atimes.(ino) <- Codec.get_float c
  done

let load layout ~read ~block_addrs =
  if Array.length block_addrs <> layout.Layout.imap_blocks then
    Types.corrupt "inode map: checkpoint has %d block addresses, layout wants %d"
      (Array.length block_addrs) layout.Layout.imap_blocks;
  let t = create layout in
  Array.iteri
    (fun i addr ->
      t.block_addrs.(i) <- addr;
      if addr <> Types.nil_addr then decode_block t i (read addr);
      t.dirty.(i) <- false)
    block_addrs;
  t

let flush t ~write ~free =
  Array.iteri
    (fun i is_dirty ->
      if is_dirty then begin
        let old = t.block_addrs.(i) in
        let fresh = write ~index:i (encode_block t i) in
        if old <> Types.nil_addr then free old;
        t.block_addrs.(i) <- fresh;
        t.dirty.(i) <- false
      end)
    t.dirty

let iter_allocated t f =
  Array.iteri
    (fun ino loc ->
      let iaddr = Types.Iaddr.of_int loc in
      if not (Types.Iaddr.is_nil iaddr) then f ino iaddr)
    t.locations

let count_allocated t =
  let n = ref 0 in
  iter_allocated t (fun _ _ -> incr n);
  !n
