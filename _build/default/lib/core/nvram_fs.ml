type t = { fs : Fs.t; nvram : Nvram.t }

type replay_report = { replayed : int; remapped_inodes : int }

let wrap fs nvram =
  Fs.on_checkpoint fs (fun () -> Nvram.clear nvram);
  { fs; nvram }

let fs t = t.fs

let checkpoint t =
  Fs.checkpoint t.fs;
  Nvram.clear t.nvram

let journal t r =
  if Nvram.is_full t.nvram then checkpoint t;
  Nvram.append t.nvram r

let create t ~dir name =
  let ino = Fs.create t.fs ~dir name in
  journal t (Nvram.Create { dir; name; ino });
  ino

let mkdir t ~dir name =
  let ino = Fs.mkdir t.fs ~dir name in
  journal t (Nvram.Mkdir { dir; name; ino });
  ino

let link t ~dir name ino =
  Fs.link t.fs ~dir name ino;
  journal t (Nvram.Link { dir; name; ino })

let unlink t ~dir name =
  let ino =
    match Fs.lookup t.fs ~dir name with
    | Some ino -> ino
    | None -> Types.fs_error "nvram_fs: no such entry %S" name
  in
  Fs.unlink t.fs ~dir name;
  journal t (Nvram.Unlink { dir; name; ino })

let rmdir t ~dir name =
  let ino =
    match Fs.lookup t.fs ~dir name with
    | Some ino -> ino
    | None -> Types.fs_error "nvram_fs: no such entry %S" name
  in
  Fs.rmdir t.fs ~dir name;
  journal t (Nvram.Rmdir { dir; name; ino })

let rename t ~odir oname ~ndir nname =
  let ino =
    match Fs.lookup t.fs ~dir:odir oname with
    | Some ino -> ino
    | None -> Types.fs_error "nvram_fs: no such entry %S" oname
  in
  Fs.rename t.fs ~odir oname ~ndir nname;
  journal t (Nvram.Rename { odir; oname; ndir; nname; ino })

let write t ino ~off data =
  Fs.write t.fs ino ~off data;
  journal t (Nvram.Write { ino; off; data = Bytes.copy data })

let truncate t ino ~len =
  Fs.truncate t.fs ino ~len;
  journal t (Nvram.Truncate { ino; len })

let read t ino ~off ~len = Fs.read t.fs ino ~off ~len
let resolve t path = Fs.resolve t.fs path

let write_path t path data =
  match Fs.resolve t.fs path with
  | Some ino ->
      truncate t ino ~len:0;
      write t ino ~off:0 data
  | None ->
      (* Resolve the parent so the create is journalled too. *)
      let dir_path = Filename.dirname path in
      let dir =
        match Fs.resolve t.fs dir_path with
        | Some d -> d
        | None -> Types.fs_error "nvram_fs: missing directory %s" dir_path
      in
      let ino = create t ~dir (Filename.basename path) in
      write t ino ~off:0 data

let read_path t path = Fs.read_path t.fs path

(* Replay applies each record, in order, to the state it originally
   executed against: the journal is cleared at every checkpoint, so
   mounting the checkpoint (discarding the un-checkpointed log tail)
   leaves exactly the journal's starting state.  At most one record can
   overlap durable state (an operation whose own epilogue checkpointed
   before it was journalled); every case of that overlap is idempotent
   under the guards below. *)
let recover disk nvram =
  let fs = Fs.mount disk in
  let remap : (Types.ino, Types.ino) Hashtbl.t = Hashtbl.create 16 in
  let remapped = ref 0 in
  let resolve_ino ino = Option.value ~default:ino (Hashtbl.find_opt remap ino) in
  let note_remap journalled actual =
    if journalled <> actual then incr remapped;
    (* Always record, even the identity: a journalled number can pass
       through several incarnations, and a stale mapping from an earlier
       one must not shadow the current file. *)
    Hashtbl.replace remap journalled actual
  in
  let ensure_entry ~dir ~name ~journalled_ino ~make =
    let dir = resolve_ino dir in
    match Fs.lookup fs ~dir name with
    | Some existing -> note_remap journalled_ino existing
    | None ->
        let fresh = make ~dir name in
        note_remap journalled_ino fresh
  in
  let replayed = ref 0 in
  let apply r =
    incr replayed;
    match r with
    | Nvram.Create { dir; name; ino } ->
        ensure_entry ~dir ~name ~journalled_ino:ino ~make:(fun ~dir n ->
            Fs.create fs ~dir n)
    | Nvram.Mkdir { dir; name; ino } ->
        ensure_entry ~dir ~name ~journalled_ino:ino ~make:(fun ~dir n ->
            Fs.mkdir fs ~dir n)
    | Nvram.Link { dir; name; ino } ->
        let dir = resolve_ino dir in
        let ino = resolve_ino ino in
        if Fs.lookup fs ~dir name = None then (
          try Fs.link fs ~dir name ino with Types.Fs_error _ -> ())
    | Nvram.Unlink { dir; name; ino } ->
        (* Only the journalled incarnation: a file re-created under this
           name later in the journal must not be unlinked here. *)
        let dir = resolve_ino dir in
        if Fs.lookup fs ~dir name = Some (resolve_ino ino) then
          Fs.unlink fs ~dir name
    | Nvram.Rmdir { dir; name; ino } ->
        let dir = resolve_ino dir in
        if Fs.lookup fs ~dir name = Some (resolve_ino ino) then
          Fs.rmdir fs ~dir name
    | Nvram.Rename { odir; oname; ndir; nname; ino } ->
        let odir = resolve_ino odir and ndir = resolve_ino ndir in
        if Fs.lookup fs ~dir:odir oname = Some (resolve_ino ino) then
          Fs.rename fs ~odir oname ~ndir nname
    | Nvram.Write { ino; off; data } -> (
        (* The file may be unlinked later in the journal and already gone
           from the recovered state; the skipped bytes are dead anyway. *)
        try Fs.write fs (resolve_ino ino) ~off data
        with Types.Fs_error _ -> ())
    | Nvram.Truncate { ino; len } -> (
        try Fs.truncate fs (resolve_ino ino) ~len with Types.Fs_error _ -> ())
  in
  List.iter apply (Nvram.records nvram);
  let t = wrap fs nvram in
  checkpoint t;
  (t, { replayed = !replayed; remapped_inodes = !remapped })
