module Codec = Lfs_util.Bytes_codec

type t = {
  layout : Layout.t;
  live : int array;
  mtimes : float array;
  block_addrs : int array;
  dirty : bool array;
}

let entries_per_block t = t.layout.Layout.usage_entries_per_block
let seg_capacity t = t.layout.Layout.seg_blocks * t.layout.Layout.block_size

let create layout =
  {
    layout;
    live = Array.make layout.Layout.nsegs 0;
    mtimes = Array.make layout.Layout.nsegs 0.0;
    block_addrs = Array.make layout.Layout.usage_blocks Types.nil_addr;
    dirty = Array.make layout.Layout.usage_blocks true;
  }

let nsegs t = Array.length t.live

let check t s =
  if s < 0 || s >= nsegs t then
    Types.fs_error "segment %d out of range [0, %d)" s (nsegs t)

let live_bytes t s =
  check t s;
  t.live.(s)

let mtime t s =
  check t s;
  t.mtimes.(s)

let utilization t s = float_of_int (live_bytes t s) /. float_of_int (seg_capacity t)

let block_of_seg t s = s / entries_per_block t
let mark_block_dirty t i = t.dirty.(i) <- true
let clear_block_dirty t i = t.dirty.(i) <- false
let mark_seg_dirty t s = mark_block_dirty t (block_of_seg t s)

let dirty_blocks t =
  let acc = ref [] in
  for i = Array.length t.dirty - 1 downto 0 do
    if t.dirty.(i) then acc := i :: !acc
  done;
  !acc

let add_live t s ~bytes ~mtime =
  check t s;
  t.live.(s) <- t.live.(s) + bytes;
  assert (t.live.(s) <= seg_capacity t);
  if mtime > t.mtimes.(s) then t.mtimes.(s) <- mtime;
  mark_seg_dirty t s

let kill t s ~bytes =
  check t s;
  t.live.(s) <- t.live.(s) - bytes;
  assert (t.live.(s) >= 0);
  mark_seg_dirty t s

let set_clean t s =
  check t s;
  t.live.(s) <- 0;
  t.mtimes.(s) <- 0.0;
  mark_seg_dirty t s

let is_clean t s = live_bytes t s = 0

let clean_count t =
  let n = ref 0 in
  Array.iter (fun l -> if l = 0 then incr n) t.live;
  !n

let clean_segments t =
  let acc = ref [] in
  for s = nsegs t - 1 downto 0 do
    if t.live.(s) = 0 then acc := s :: !acc
  done;
  !acc

let dirty_segments t =
  let acc = ref [] in
  for s = nsegs t - 1 downto 0 do
    if t.live.(s) > 0 then acc := s :: !acc
  done;
  !acc

let block_addr t i = t.block_addrs.(i)
let set_block_addr t i addr = t.block_addrs.(i) <- addr
let nblocks t = Array.length t.block_addrs

let encode_block t i =
  let b = Bytes.make t.layout.Layout.block_size '\000' in
  let c = Codec.writer b in
  let lo = i * entries_per_block t in
  let hi = min (lo + entries_per_block t) (nsegs t) in
  for s = lo to hi - 1 do
    Codec.put_u32 c t.live.(s);
    Codec.put_u32 c 0;
    Codec.put_float c t.mtimes.(s)
  done;
  b

let decode_block t i b =
  let c = Codec.reader b in
  let lo = i * entries_per_block t in
  let hi = min (lo + entries_per_block t) (nsegs t) in
  for s = lo to hi - 1 do
    t.live.(s) <- Codec.get_u32 c;
    ignore (Codec.get_u32 c);
    t.mtimes.(s) <- Codec.get_float c
  done

let load layout ~read ~block_addrs =
  if Array.length block_addrs <> layout.Layout.usage_blocks then
    Types.corrupt
      "segment usage table: checkpoint has %d block addresses, layout wants %d"
      (Array.length block_addrs) layout.Layout.usage_blocks;
  let t = create layout in
  Array.iteri
    (fun i addr ->
      t.block_addrs.(i) <- addr;
      if addr <> Types.nil_addr then decode_block t i (read addr);
      t.dirty.(i) <- false)
    block_addrs;
  t

let flush t ~write ~free =
  Array.iteri
    (fun i is_dirty ->
      if is_dirty then begin
        let old = t.block_addrs.(i) in
        let fresh = write ~index:i (encode_block t i) in
        if old <> Types.nil_addr then free old;
        t.block_addrs.(i) <- fresh;
        t.dirty.(i) <- false
      end)
    t.dirty

let utilization_histogram t ~bins ~exclude =
  let h = Lfs_util.Histogram.create ~bins in
  for s = 0 to nsegs t - 1 do
    if not (exclude s) then Lfs_util.Histogram.add h (utilization t s)
  done;
  h
