module Codec = Lfs_util.Bytes_codec

type record =
  | Add of {
      dir : Types.ino;
      name : string;
      ino : Types.ino;
      nlink : int;
      fresh : bool;
    }
  | Remove of { dir : Types.ino; name : string; ino : Types.ino; nlink : int }
  | Rename of {
      odir : Types.ino;
      oname : string;
      ndir : Types.ino;
      nname : string;
      ino : Types.ino;
    }

let record_size = function
  | Add { name; _ } -> 1 + 4 + 2 + String.length name + 4 + 4 + 1
  | Remove { name; _ } -> 1 + 4 + 2 + String.length name + 4 + 4
  | Rename { oname; nname; _ } ->
      1 + 4 + 2 + String.length oname + 4 + 2 + String.length nname + 4

let encode_record c = function
  | Add { dir; name; ino; nlink; fresh } ->
      Codec.put_u8 c 1;
      Codec.put_u32 c dir;
      Codec.put_string c name;
      Codec.put_u32 c ino;
      Codec.put_u32 c nlink;
      Codec.put_u8 c (if fresh then 1 else 0)
  | Remove { dir; name; ino; nlink } ->
      Codec.put_u8 c 2;
      Codec.put_u32 c dir;
      Codec.put_string c name;
      Codec.put_u32 c ino;
      Codec.put_u32 c nlink
  | Rename { odir; oname; ndir; nname; ino } ->
      Codec.put_u8 c 3;
      Codec.put_u32 c odir;
      Codec.put_string c oname;
      Codec.put_u32 c ndir;
      Codec.put_string c nname;
      Codec.put_u32 c ino

let decode_record c =
  match Codec.get_u8 c with
  | 1 ->
      let dir = Codec.get_u32 c in
      let name = Codec.get_string c in
      let ino = Codec.get_u32 c in
      let nlink = Codec.get_u32 c in
      let fresh = Codec.get_u8 c = 1 in
      Add { dir; name; ino; nlink; fresh }
  | 2 ->
      let dir = Codec.get_u32 c in
      let name = Codec.get_string c in
      let ino = Codec.get_u32 c in
      let nlink = Codec.get_u32 c in
      Remove { dir; name; ino; nlink }
  | 3 ->
      let odir = Codec.get_u32 c in
      let oname = Codec.get_string c in
      let ndir = Codec.get_u32 c in
      let nname = Codec.get_string c in
      let ino = Codec.get_u32 c in
      Rename { odir; oname; ndir; nname; ino }
  | n -> Types.corrupt "dir-log: unknown record tag %d" n

let encode_blocks ~block_size records =
  let blocks = ref [] in
  let current = ref [] in
  let used = ref 4 (* count field *) in
  let seal () =
    if !current <> [] then begin
      let b = Bytes.make block_size '\000' in
      let c = Codec.writer b in
      let rs = List.rev !current in
      Codec.put_u32 c (List.length rs);
      List.iter (encode_record c) rs;
      blocks := b :: !blocks;
      current := [];
      used := 4
    end
  in
  List.iter
    (fun r ->
      let sz = record_size r in
      if !used + sz > block_size then seal ();
      current := r :: !current;
      used := !used + sz)
    records;
  seal ();
  List.rev !blocks

let decode_block b =
  let c = Codec.reader b in
  let n = Codec.get_u32 c in
  if n > Bytes.length b then Types.corrupt "dir-log: impossible record count %d" n;
  List.init n (fun _ -> decode_record c)

let pp_record ppf = function
  | Add { dir; name; ino; nlink; fresh } ->
      Format.fprintf ppf "add %d/%s -> ino %d (nlink %d%s)" dir name ino nlink
        (if fresh then ", fresh" else "")
  | Remove { dir; name; ino; nlink } ->
      Format.fprintf ppf "remove %d/%s (ino %d, nlink %d)" dir name ino nlink
  | Rename { odir; oname; ndir; nname; ino } ->
      Format.fprintf ppf "rename %d/%s -> %d/%s (ino %d)" odir oname ndir nname ino
