lib/core/fs_stats.ml: Array List Types
