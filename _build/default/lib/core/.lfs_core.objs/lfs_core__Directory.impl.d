lib/core/directory.ml: Bytes Lfs_util List String Types
