lib/core/fsck.ml: Array Directory Filemap Format Fs Hashtbl Inode Layout List Option Printf Types
