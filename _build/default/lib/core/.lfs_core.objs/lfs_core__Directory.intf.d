lib/core/directory.mli: Types
