lib/core/summary.ml: Bytes Int32 Layout Lfs_util List Printf Types
