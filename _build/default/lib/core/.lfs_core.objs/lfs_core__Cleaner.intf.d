lib/core/cleaner.mli: Config
