lib/core/log_writer.mli: Layout Lfs_disk Types
