lib/core/nvram.ml: Bytes List String Types
