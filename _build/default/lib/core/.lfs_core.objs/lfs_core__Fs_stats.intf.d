lib/core/fs_stats.mli: Types
