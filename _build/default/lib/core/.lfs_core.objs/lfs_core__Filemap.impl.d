lib/core/filemap.ml: Array Bytes Inode Int64 Layout Lfs_util List Types
