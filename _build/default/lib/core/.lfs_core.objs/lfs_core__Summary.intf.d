lib/core/summary.mli: Layout Types
