lib/core/fsck.mli: Format Fs
