lib/core/inode_map.ml: Array Bytes Layout Lfs_util Types
