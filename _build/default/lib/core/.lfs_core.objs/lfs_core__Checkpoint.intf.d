lib/core/checkpoint.mli: Layout Lfs_disk Types
