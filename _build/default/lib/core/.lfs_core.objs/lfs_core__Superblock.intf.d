lib/core/superblock.mli: Config Layout Lfs_disk
