lib/core/layout.ml: Config Format Printf
