lib/core/dir_log.mli: Format Types
