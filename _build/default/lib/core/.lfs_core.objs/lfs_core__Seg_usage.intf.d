lib/core/seg_usage.mli: Layout Lfs_util Types
