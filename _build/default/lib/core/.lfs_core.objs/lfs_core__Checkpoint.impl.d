lib/core/checkpoint.ml: Array Bytes Int32 Layout Lfs_disk Lfs_util Printf Types
