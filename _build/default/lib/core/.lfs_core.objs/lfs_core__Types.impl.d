lib/core/types.ml: Format Int Printf
