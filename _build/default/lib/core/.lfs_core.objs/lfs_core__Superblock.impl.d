lib/core/superblock.ml: Bytes Config Int32 Layout Lfs_disk Lfs_util Types
