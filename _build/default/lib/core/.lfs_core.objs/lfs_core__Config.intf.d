lib/core/config.mli:
