lib/core/log_writer.ml: Bytes Layout Lfs_disk List Summary Types
