lib/core/recovery.mli: Checkpoint Layout Lfs_disk Summary
