lib/core/inode_map.mli: Layout Types
