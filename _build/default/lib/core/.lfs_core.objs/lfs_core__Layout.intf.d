lib/core/layout.mli: Config Format
