lib/core/inode.ml: Array Bytes Format Int64 Lfs_util Types
