lib/core/filemap.mli: Inode Layout Types
