lib/core/cleaner.ml: Array Config List
