lib/core/fs.mli: Config Filemap Fs_stats Inode Layout Lfs_disk Lfs_util Types
