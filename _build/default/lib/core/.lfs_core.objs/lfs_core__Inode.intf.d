lib/core/inode.mli: Format Types
