lib/core/dir_log.ml: Bytes Format Lfs_util List String Types
