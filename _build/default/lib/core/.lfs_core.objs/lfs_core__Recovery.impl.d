lib/core/recovery.ml: Checkpoint Hashtbl Layout Lfs_disk List Summary Types
