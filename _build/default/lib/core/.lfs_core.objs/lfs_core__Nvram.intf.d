lib/core/nvram.mli: Types
