lib/core/nvram_fs.mli: Fs Lfs_disk Nvram Types
