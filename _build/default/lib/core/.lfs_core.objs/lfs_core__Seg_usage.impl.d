lib/core/seg_usage.ml: Array Bytes Layout Lfs_util Types
