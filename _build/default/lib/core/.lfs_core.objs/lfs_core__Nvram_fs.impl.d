lib/core/nvram_fs.ml: Bytes Filename Fs Hashtbl List Nvram Option Types
