module Codec = Lfs_util.Bytes_codec

type t = {
  ino : Types.ino;
  mutable ftype : Types.ftype;
  mutable nlink : int;
  mutable size : int;
  mutable mtime : float;
  direct : Types.baddr array;
  mutable indirect : Types.baddr;
  mutable dindirect : Types.baddr;
}

let ndirect = 10
let slot_size = 128
let slot_magic = 0xA5
let slot_free = 0x00

let create ~ino ~ftype ~mtime =
  {
    ino;
    ftype;
    nlink = 1;
    size = 0;
    mtime;
    direct = Array.make ndirect Types.nil_addr;
    indirect = Types.nil_addr;
    dindirect = Types.nil_addr;
  }

let copy t = { t with direct = Array.copy t.direct }

let nblocks ~block_size t = (t.size + block_size - 1) / block_size

let encode t b ~slot =
  let c = Codec.at b (slot * slot_size) in
  Codec.put_u8 c slot_magic;
  Codec.put_u8 c (Types.ftype_to_int t.ftype);
  Codec.put_u16 c t.nlink;
  Codec.put_u32 c t.ino;
  Codec.put_u64 c (Int64.of_int t.size);
  Codec.put_float c t.mtime;
  Array.iter (fun a -> Codec.put_int c a) t.direct;
  Codec.put_int c t.indirect;
  Codec.put_int c t.dindirect

let decode b ~slot =
  let c = Codec.at b (slot * slot_size) in
  let m = Codec.get_u8 c in
  if m = slot_free then None
  else if m <> slot_magic then
    Types.corrupt "inode slot %d: bad magic %#x" slot m
  else begin
    let ftype = Types.ftype_of_int (Codec.get_u8 c) in
    let nlink = Codec.get_u16 c in
    let ino = Codec.get_u32 c in
    let size = Int64.to_int (Codec.get_u64 c) in
    let mtime = Codec.get_float c in
    let direct = Array.init ndirect (fun _ -> Codec.get_int c) in
    let indirect = Codec.get_int c in
    let dindirect = Codec.get_int c in
    Some { ino; ftype; nlink; size; mtime; direct; indirect; dindirect }
  end

let clear_slot b ~slot = Bytes.set b (slot * slot_size) '\000'

let equal a b =
  a.ino = b.ino && a.ftype = b.ftype && a.nlink = b.nlink && a.size = b.size
  && a.mtime = b.mtime
  && Array.for_all2 ( = ) a.direct b.direct
  && a.indirect = b.indirect && a.dindirect = b.dindirect

let pp ppf t =
  Format.fprintf ppf "ino %d %s size=%d nlink=%d mtime=%.0f" t.ino
    (match t.ftype with Types.Regular -> "file" | Types.Directory -> "dir")
    t.size t.nlink t.mtime
