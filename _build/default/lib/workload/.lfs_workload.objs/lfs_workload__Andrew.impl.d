lib/workload/andrew.ml: Bytes Cpu_model Fsops Lfs_disk List Printf
