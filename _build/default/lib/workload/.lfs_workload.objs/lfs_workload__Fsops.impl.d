lib/workload/fsops.ml: Lfs_core Lfs_disk Lfs_ffs
