lib/workload/cpu_model.ml: Float
