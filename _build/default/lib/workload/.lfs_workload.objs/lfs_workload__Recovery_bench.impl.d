lib/workload/recovery_bench.ml: Bytes Cpu_model Lfs_core Lfs_disk List Printf
