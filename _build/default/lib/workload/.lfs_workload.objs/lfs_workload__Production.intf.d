lib/workload/production.mli: Lfs_core Lfs_util
