lib/workload/cpu_model.mli:
