lib/workload/recovery_bench.mli: Cpu_model
