lib/workload/smallfile.ml: Bytes Cpu_model Float Fsops Lfs_disk List Printf
