lib/workload/largefile.ml: Bytes Cpu_model Fsops Lfs_disk Lfs_util
