lib/workload/production.ml: Array Bytes Float Hashtbl Lfs_core Lfs_disk Lfs_util List Option Printf String
