lib/workload/smallfile.mli: Cpu_model Fsops
