lib/workload/andrew.mli: Cpu_model Fsops
