lib/workload/trace.ml: Bytes Char Filename Fsops Fun Hashtbl Lfs_util List Printf String
