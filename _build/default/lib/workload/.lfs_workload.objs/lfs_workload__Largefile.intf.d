lib/workload/largefile.mli: Cpu_model Fsops
