lib/workload/fsops.mli: Lfs_core Lfs_disk Lfs_ffs
