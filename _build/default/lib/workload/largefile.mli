(** The large-file micro-benchmark of Figure 9: write a large file
    sequentially, read it sequentially, write the same volume randomly,
    read randomly, and finally read sequentially again (the re-read that
    punishes LFS when temporal locality differs from logical
    locality). *)

type phase = Seq_write | Seq_read | Rand_write | Rand_read | Reread

val phase_name : phase -> string

type phase_result = {
  phase : phase;
  kbytes_per_sec : float;
  cpu_s : float;
  disk_s : float;
  elapsed_s : float;
}

type result = { fs_name : string; phases : phase_result list }

type params = {
  file_mb : int;      (** the paper uses 100 MB; scale down for speed *)
  chunk : int;        (** IO unit in bytes (the paper's 8 KB) *)
  cpu : Cpu_model.t;
  seed : int;
}

val default_params : params
(** 16 MB file, 8 KB transfers. *)

val run : params -> Fsops.t -> result
