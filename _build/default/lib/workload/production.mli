(** Long-running synthetic workloads modelled on the five production
    file systems of Table 2 (/user6, /pcs, /src/kernel, /tmp, /swap2).

    Each spec reproduces the characteristics the paper says drive real
    cleaning costs below the simulator's predictions: realistic file
    sizes written and deleted as a whole (locality within segments), a
    hot/cold split much colder than the simulator's (files that are
    almost never written), and for /swap2 large sparse files written
    non-sequentially.  Disk sizes are scaled down ~20x to keep runs
    fast; utilisations, file sizes and traffic ratios match the paper.

    The run drives a real {!Lfs_core.Fs} on a simulated disk and reports
    the cleaning statistics of Table 2 plus the artefacts needed for
    Figure 10 and Table 4. *)

type spec = {
  name : string;
  disk_mb : int;
  seg_kb : int;
  mean_file_kb : float;
  target_util : float;         (** paper's "In Use" column *)
  traffic_to_disk_ratio : float;  (** total write traffic / disk size *)
  hot_fraction : float;
  hot_traffic : float;
  frozen_fraction : float;
      (** files written once and never again — the paper: "cold segments
          in reality are much colder than in the simulations" *)
  whole_file_writes : bool;    (** false = sparse random writes (swap) *)
  create_delete_fraction : float;
  checkpoint_interval_ops : int;
  seed : int;
}

val user6 : spec
val pcs : spec
val src_kernel : spec
val tmp : spec
val swap2 : spec
val all : spec list

type result = {
  spec : spec;
  avg_file_size : float;        (** bytes, measured *)
  in_use : float;               (** measured utilisation *)
  segments_cleaned : int;
  cleaner_blocks_read : int;
  empty_fraction : float;       (** segments cleaned that were empty *)
  avg_nonempty_u : float;       (** Table 2's "u" column *)
  write_cost : float;
  histogram : Lfs_util.Histogram.t;  (** Figure 10 *)
  live_breakdown : (Lfs_core.Types.block_kind * float) list;
      (** fraction of live bytes by kind (Table 4 left column) *)
  log_bandwidth : (Lfs_core.Types.block_kind * float) list;
      (** fraction of log blocks by kind (Table 4 right column) *)
}

val run :
  ?scale:float ->
  ?policy:Lfs_core.Config.cleaning_policy ->
  ?cleaner_read:Lfs_core.Config.cleaner_read_policy ->
  spec ->
  result
(** [scale] further multiplies the disk size (default 1.0); [policy]
    and [cleaner_read] override the cleaning policies for ablations. *)
