type t = { speed : float; per_op_s : float; per_block_s : float }

let sun4_260 = { speed = 1.0; per_op_s = 0.0045; per_block_s = 0.0006 }

let scale t k = { t with speed = t.speed *. k }

let cost t ~ops ~blocks =
  ((float_of_int ops *. t.per_op_s) +. (float_of_int blocks *. t.per_block_s))
  /. t.speed

let elapsed ~sync ~cpu_s ~disk_s =
  if sync then cpu_s +. disk_s else Float.max cpu_s disk_s
