(** A modified-Andrew-style benchmark.

    Section 5 of the paper notes that on the modified Andrew benchmark
    Sprite LFS is only ~20% faster than SunOS, because the benchmark has
    a CPU utilisation over 80% — disk storage management barely matters
    when the machine is compute-bound.  This module reproduces that
    observation: a five-phase workload (make directories, copy a source
    tree, stat everything, read everything, "compile") where the compile
    phase burns modelled CPU. *)

type phase = Mkdir | Copy | Stat | Read | Compile

val phase_name : phase -> string

type phase_result = {
  phase : phase;
  elapsed_s : float;
  cpu_s : float;
  disk_s : float;
}

type result = {
  fs_name : string;
  phases : phase_result list;
  total_s : float;
  cpu_utilization : float;  (** total CPU / total elapsed *)
}

type params = {
  dirs : int;
  files : int;
  file_bytes : int;
  compile_cpu_s_per_file : float;  (** the compute that dominates *)
  cpu : Cpu_model.t;
}

val default_params : params
(** 20 directories, 70 x 4 KB files, 1 s of compile CPU per file
    (Sun-4-era cc), calibrated so the whole run is >80% CPU-bound. *)

val run : params -> Fsops.t -> result
