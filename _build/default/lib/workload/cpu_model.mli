(** CPU-time model for the benchmark harness.

    The paper's testbed was a Sun-4/260 (8.7 integer SPECmarks); Sprite
    LFS saturated that CPU while keeping the disk 17% busy, which is how
    Figure 8(b) projects performance onto faster machines.  We model CPU
    time as a fixed cost per file-system operation plus a cost per block
    moved, divided by a speed multiplier. *)

type t = {
  speed : float;        (** 1.0 = Sun-4/260 *)
  per_op_s : float;     (** syscall + name lookup + metadata handling *)
  per_block_s : float;  (** copying / checksumming one 4 KB block *)
}

val sun4_260 : t
(** Calibrated so the LFS small-file create phase is CPU-bound at
    roughly the paper's ~180 files/sec. *)

val scale : t -> float -> t
(** [scale t k] models a machine [k] times faster. *)

val cost : t -> ops:int -> blocks:int -> float
(** Modelled CPU seconds. *)

val elapsed : sync:bool -> cpu_s:float -> disk_s:float -> float
(** Wall time: synchronous IO serialises with the CPU ([cpu + disk]);
    asynchronous IO overlaps ([max cpu disk]). *)
