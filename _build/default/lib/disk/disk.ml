type t = {
  geometry : Geometry.t;
  data : bytes array;
  stats : Io_stats.t;
  mutable head : int;  (* block index just past the previous transfer *)
  mutable crash_countdown : int option;  (* blocks until power cut *)
  mutable crashed : bool;
}

exception Crashed

let create geometry =
  {
    geometry;
    data = Array.init geometry.Geometry.blocks (fun _ -> Bytes.make geometry.Geometry.block_size '\000');
    stats = Io_stats.create ();
    head = -1;
    crash_countdown = None;
    crashed = false;
  }

let geometry t = t.geometry
let block_size t = t.geometry.Geometry.block_size
let nblocks t = t.geometry.Geometry.blocks
let stats t = t.stats

let check_range t addr n what =
  if addr < 0 || n < 0 || addr + n > nblocks t then
    invalid_arg
      (Printf.sprintf "Disk.%s: blocks [%d, %d) out of range [0, %d)" what addr
         (addr + n) (nblocks t))

let charge t ~addr ~n =
  let reposition =
    if addr = t.head then 0.0
    else begin
      t.stats.Io_stats.seeks <- t.stats.Io_stats.seeks + 1;
      let distance_blocks =
        if t.head < 0 then nblocks t / 3 else abs (addr - t.head)
      in
      Geometry.seek_time t.geometry ~distance_blocks
      +. t.geometry.Geometry.rotational_latency_s
    end
  in
  let transfer =
    if t.geometry.Geometry.bandwidth_bytes_per_s = infinity then 0.0
    else float_of_int (n * block_size t) /. t.geometry.Geometry.bandwidth_bytes_per_s
  in
  t.stats.Io_stats.busy_s <-
    t.stats.Io_stats.busy_s +. reposition +. transfer
    +. t.geometry.Geometry.per_io_overhead_s;
  t.head <- addr + n

let ensure_alive t = if t.crashed then raise Crashed

let read_blocks t addr n =
  ensure_alive t;
  check_range t addr n "read_blocks";
  charge t ~addr ~n;
  t.stats.Io_stats.reads <- t.stats.Io_stats.reads + 1;
  t.stats.Io_stats.blocks_read <- t.stats.Io_stats.blocks_read + n;
  let bs = block_size t in
  let out = Bytes.create (n * bs) in
  for i = 0 to n - 1 do
    Bytes.blit t.data.(addr + i) 0 out (i * bs) bs
  done;
  out

let read_block t addr = read_blocks t addr 1

(* How many of the next [n] blocks may still be persisted before the
   armed crash triggers.  Returns [n] when no crash is armed. *)
let writable_prefix t n =
  match t.crash_countdown with
  | None -> n
  | Some k -> min k n

let consume_countdown t n =
  match t.crash_countdown with
  | None -> ()
  | Some k ->
      let k = k - n in
      if k <= 0 then begin
        t.crash_countdown <- None;
        t.crashed <- true
      end
      else t.crash_countdown <- Some k

let write_blocks t addr b =
  ensure_alive t;
  let bs = block_size t in
  if Bytes.length b mod bs <> 0 then
    invalid_arg "Disk.write_blocks: buffer is not a whole number of blocks";
  let n = Bytes.length b / bs in
  check_range t addr n "write_blocks";
  charge t ~addr ~n;
  t.stats.Io_stats.writes <- t.stats.Io_stats.writes + 1;
  t.stats.Io_stats.blocks_written <- t.stats.Io_stats.blocks_written + n;
  let persist = writable_prefix t n in
  for i = 0 to persist - 1 do
    Bytes.blit b (i * bs) t.data.(addr + i) 0 bs
  done;
  consume_countdown t n;
  if t.crashed then raise Crashed

let write_block t addr b =
  if Bytes.length b <> block_size t then
    invalid_arg "Disk.write_block: buffer is not exactly one block";
  write_blocks t addr b

let zero_blocks t addr n =
  check_range t addr n "zero_blocks";
  for i = 0 to n - 1 do
    Bytes.fill t.data.(addr + i) 0 (block_size t) '\000'
  done

let plan_crash t ~after_blocks =
  assert (after_blocks >= 0);
  t.crash_countdown <- Some after_blocks

let cancel_crash t = t.crash_countdown <- None
let is_crashed t = t.crashed

let reboot t =
  t.crashed <- false;
  t.crash_countdown <- None;
  t.head <- -1

let snapshot t =
  {
    geometry = t.geometry;
    data = Array.map Bytes.copy t.data;
    stats = Io_stats.copy t.stats;
    head = t.head;
    crash_countdown = t.crash_countdown;
    crashed = t.crashed;
  }

let restore t ~from =
  if t.geometry <> from.geometry then
    invalid_arg "Disk.restore: geometry mismatch";
  Array.iteri (fun i b -> Bytes.blit b 0 t.data.(i) 0 (Bytes.length b)) from.data;
  let s = t.stats and s' = from.stats in
  s.Io_stats.reads <- s'.Io_stats.reads;
  s.Io_stats.writes <- s'.Io_stats.writes;
  s.Io_stats.blocks_read <- s'.Io_stats.blocks_read;
  s.Io_stats.blocks_written <- s'.Io_stats.blocks_written;
  s.Io_stats.seeks <- s'.Io_stats.seeks;
  s.Io_stats.busy_s <- s'.Io_stats.busy_s;
  t.head <- from.head;
  t.crash_countdown <- from.crash_countdown;
  t.crashed <- from.crashed

let save_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Array.iter (fun b -> output_bytes oc b) t.data)

let load_file geometry path =
  let expected = Geometry.capacity_bytes geometry in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      if in_channel_length ic <> expected then
        invalid_arg
          (Printf.sprintf "Disk.load_file: %s is %d bytes, geometry wants %d"
             path (in_channel_length ic) expected);
      let t = create geometry in
      Array.iter (fun b -> really_input ic b 0 (Bytes.length b)) t.data;
      t)
