lib/disk/disk.ml: Array Bytes Fun Geometry Io_stats Printf
