lib/disk/io_stats.ml: Format
