lib/disk/block_cache.ml: Bytes Disk Hashtbl
