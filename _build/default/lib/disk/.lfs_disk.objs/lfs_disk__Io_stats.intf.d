lib/disk/io_stats.mli: Format
