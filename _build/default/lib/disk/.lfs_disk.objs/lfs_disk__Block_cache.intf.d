lib/disk/block_cache.mli: Disk
