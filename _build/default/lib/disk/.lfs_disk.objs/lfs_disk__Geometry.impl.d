lib/disk/geometry.ml: Float Format
