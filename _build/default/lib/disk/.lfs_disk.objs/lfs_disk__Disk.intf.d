lib/disk/disk.mli: Geometry Io_stats
