(** The analytic write-cost model of Section 3.4 (formula 1 and the FFS
    reference points of Figure 3). *)

val lfs : u:float -> float
(** [2 / (1 - u)]: cost of writing new data when segments cleaned have
    utilisation [u]; 1.0 when [u = 0] (empty segments are not read). *)

val ffs_today : float
(** Unix FFS on small-file workloads uses 5-10% of disk bandwidth; the
    paper plots a write cost of 10. *)

val ffs_improved : float
(** FFS with logging, delayed writes and request sorting: about 25% of
    bandwidth, a write cost of 4. *)

val series : ?points:int -> unit -> (float * float) array
(** [(u, lfs ~u)] samples across [0, 0.95] for plotting Figure 3. *)
