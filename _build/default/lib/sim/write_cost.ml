let lfs ~u =
  assert (u >= 0.0 && u < 1.0);
  if u = 0.0 then 1.0 else 2.0 /. (1.0 -. u)

let ffs_today = 10.0
let ffs_improved = 4.0

let series ?(points = 20) () =
  Array.init points (fun i ->
      let u = 0.95 *. float_of_int i /. float_of_int (points - 1) in
      (u, lfs ~u))
