module Prng = Lfs_util.Prng
module Histogram = Lfs_util.Histogram

type policy = {
  selection : Config_sim.selection;
  grouping : Config_sim.grouping;
}

type params = {
  nsegs : int;
  blocks_per_seg : int;
  utilization : float;
  pattern : Access.t;
  policy : policy;
  clean_low : int;
  clean_high : int;
  segs_per_pass : int;
  warmup_writes : int;
  measured_writes : int;
  seed : int;
}

(* Calibrated to reproduce Figures 4-7: segments the size of the paper's
   (1 MB / 4 KB files = 256 blocks), and a clean-segment reserve that is
   a small fraction of the disk — a large reserve inflates the effective
   utilisation and distorts write cost at the high end. *)
let default_params =
  {
    nsegs = 256;
    blocks_per_seg = 256;
    utilization = 0.75;
    pattern = Access.Uniform;
    policy = { selection = Config_sim.Greedy; grouping = Config_sim.In_order };
    clean_low = 2;
    clean_high = 6;
    segs_per_pass = 4;
    warmup_writes = 3_000_000;
    measured_writes = 1_000_000;
    seed = 0xCAFE;
  }

type result = {
  write_cost : float;
  avg_cleaned_u : float;
  segments_cleaned : int;
  cleaner_histogram : Histogram.t;
  final_histogram : Histogram.t;
}

type state = {
  p : params;
  file_slot : int array;
  slot_file : int array;
  slot_time : float array;
  seg_live : int array;
  seg_youngest : float array;
  mutable free : int list;
  mutable free_count : int;
  is_free : bool array;
  mutable cur_seg : int;
  mutable cur_off : int;
  mutable out_seg : int;   (* cleaner output segment; -1 when none *)
  mutable out_off : int;
  mutable now : float;
  mutable measuring : bool;
  mutable new_writes : int;
  mutable cleaner_reads : int;   (* blocks *)
  mutable cleaner_writes : int;  (* blocks *)
  mutable cleaned_u_sum : float;
  mutable cleaned_count : int;
  cleaner_histogram : Histogram.t;
  sample : unit -> int;
}

let spseg st = st.p.blocks_per_seg

let seg_of_slot st slot = slot / spseg st

let pop_free st =
  match st.free with
  | [] -> failwith "simulator: free pool exhausted (cleaning cannot keep up)"
  | s :: rest ->
      st.free <- rest;
      st.free_count <- st.free_count - 1;
      st.is_free.(s) <- false;
      st.seg_youngest.(s) <- 0.0;
      s

let push_free st s =
  st.free <- s :: st.free;
  st.free_count <- st.free_count + 1;
  st.is_free.(s) <- true

let invalidate st file =
  let slot = st.file_slot.(file) in
  if slot >= 0 then begin
    st.slot_file.(slot) <- -1;
    let seg = seg_of_slot st slot in
    st.seg_live.(seg) <- st.seg_live.(seg) - 1
  end

(* Place a block into a (segment, offset) slot.  [time] is the block's
   modify time (preserved across cleaning so age-sorting stays
   meaningful); [stamp] is the segment-usage-table timestamp, which is
   set when the segment is written (Section 3.6) — for cleaner output
   that is the time of cleaning, which is what keeps a freshly compacted
   cold segment from being re-selected immediately. *)
let place st file seg off ~time ~stamp =
  let slot = (seg * spseg st) + off in
  st.slot_file.(slot) <- file;
  st.slot_time.(slot) <- time;
  st.file_slot.(file) <- slot;
  st.seg_live.(seg) <- st.seg_live.(seg) + 1;
  if stamp > st.seg_youngest.(seg) then st.seg_youngest.(seg) <- stamp

let seg_u st seg = float_of_int st.seg_live.(seg) /. float_of_int (spseg st)

let candidates st =
  let acc = ref [] in
  for seg = st.p.nsegs - 1 downto 0 do
    if seg <> st.cur_seg && seg <> st.out_seg && not st.is_free.(seg) then
      acc := seg :: !acc
  done;
  !acc

let select_victims st cands =
  let score =
    match st.p.policy.selection with
    | Config_sim.Greedy -> fun seg -> -.seg_u st seg
    | Config_sim.Cost_benefit ->
        fun seg ->
          let u = seg_u st seg in
          if u = 0.0 then infinity
          else
            Config_sim.benefit_cost ~u
              ~age:(Float.max 0.0 (st.now -. st.seg_youngest.(seg)))
  in
  let scored = List.map (fun seg -> (score seg, seg)) cands in
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored in
  List.filteri (fun i _ -> i < st.p.segs_per_pass) (List.map snd sorted)

let cleaner_emit st (file, time) =
  if st.out_seg = -1 || st.out_off >= spseg st then begin
    st.out_seg <- pop_free st;
    st.out_off <- 0
  end;
  (* The file may have been overwritten between gather and emit — it
     cannot here (no interleaving), but guard stays cheap. *)
  place st file st.out_seg st.out_off ~time ~stamp:st.now;
  st.out_off <- st.out_off + 1;
  if st.measuring then st.cleaner_writes <- st.cleaner_writes + 1

let clean st =
  (* Figures 5-6 sample the utilisation of every segment available to
     the cleaner each time cleaning is initiated. *)
  List.iter
    (fun seg -> if st.measuring then Histogram.add st.cleaner_histogram (seg_u st seg))
    (candidates st);
  while st.free_count < st.p.clean_high do
    let cands = candidates st in
    if cands = [] then failwith "simulator: nothing left to clean";
    let victims = select_victims st cands in
    let live = ref [] in
    List.iter
      (fun seg ->
        let u = seg_u st seg in
        if st.measuring then begin
          st.cleaned_u_sum <- st.cleaned_u_sum +. u;
          st.cleaned_count <- st.cleaned_count + 1
        end;
        if st.seg_live.(seg) > 0 then begin
          (* Read the whole segment to recover its live blocks. *)
          if st.measuring then
            st.cleaner_reads <- st.cleaner_reads + spseg st;
          for off = 0 to spseg st - 1 do
            let slot = (seg * spseg st) + off in
            let file = st.slot_file.(slot) in
            if file >= 0 then begin
              live := (file, st.slot_time.(slot)) :: !live;
              st.slot_file.(slot) <- -1;
              st.file_slot.(file) <- -1
            end
          done;
          st.seg_live.(seg) <- 0
        end;
        push_free st seg)
      victims;
    let ordered =
      match st.p.policy.grouping with
      | Config_sim.In_order -> List.rev !live
      | Config_sim.Age_sort ->
          List.sort (fun (_, a) (_, b) -> compare a b) (List.rev !live)
    in
    List.iter (cleaner_emit st) ordered
  done

let write_step st =
  if st.cur_off >= spseg st then begin
    if st.free_count <= st.p.clean_low then clean st;
    st.cur_seg <- pop_free st;
    st.cur_off <- 0
  end;
  let file = st.sample () in
  invalidate st file;
  st.now <- st.now +. 1.0;
  place st file st.cur_seg st.cur_off ~time:st.now ~stamp:st.now;
  st.cur_off <- st.cur_off + 1;
  if st.measuring then st.new_writes <- st.new_writes + 1

let init p =
  let nslots = p.nsegs * p.blocks_per_seg in
  let nfiles =
    max 1 (int_of_float (Float.round (p.utilization *. float_of_int nslots)))
  in
  if nfiles > nslots - (p.clean_high + 2) * p.blocks_per_seg then
    invalid_arg "Simulator: utilization too high for the cleaning thresholds";
  let prng = Prng.create ~seed:p.seed in
  let st =
    {
      p;
      file_slot = Array.make nfiles (-1);
      slot_file = Array.make nslots (-1);
      slot_time = Array.make nslots 0.0;
      seg_live = Array.make p.nsegs 0;
      seg_youngest = Array.make p.nsegs 0.0;
      free = List.init (p.nsegs - 1) (fun i -> i + 1);
      free_count = p.nsegs - 1;
      is_free = Array.init p.nsegs (fun i -> i <> 0);
      cur_seg = 0;
      cur_off = 0;
      out_seg = -1;
      out_off = 0;
      now = 0.0;
      measuring = false;
      new_writes = 0;
      cleaner_reads = 0;
      cleaner_writes = 0;
      cleaned_u_sum = 0.0;
      cleaned_count = 0;
      cleaner_histogram = Histogram.create ~bins:50;
      sample = Access.sampler p.pattern ~nfiles prng;
    }
  in
  (* Initial population: write every file once. *)
  for file = 0 to nfiles - 1 do
    if st.cur_off >= p.blocks_per_seg then begin
      st.cur_seg <- pop_free st;
      st.cur_off <- 0
    end;
    st.now <- st.now +. 1.0;
    place st file st.cur_seg st.cur_off ~time:st.now ~stamp:st.now;
    st.cur_off <- st.cur_off + 1
  done;
  st

let run p =
  let st = init p in
  for _ = 1 to p.warmup_writes do
    write_step st
  done;
  st.measuring <- true;
  for _ = 1 to p.measured_writes do
    write_step st
  done;
  let final_histogram = Histogram.create ~bins:50 in
  for seg = 0 to p.nsegs - 1 do
    if seg <> st.cur_seg && seg <> st.out_seg then
      Histogram.add final_histogram (seg_u st seg)
  done;
  {
    write_cost =
      (if st.new_writes = 0 then 1.0
       else
         float_of_int (st.new_writes + st.cleaner_reads + st.cleaner_writes)
         /. float_of_int st.new_writes);
    avg_cleaned_u =
      (if st.cleaned_count = 0 then 0.0
       else st.cleaned_u_sum /. float_of_int st.cleaned_count);
    segments_cleaned = st.cleaned_count;
    cleaner_histogram = st.cleaner_histogram;
    final_histogram;
  }

let sweep_utilization ?(points = 10) ?(lo = 0.1) ?(hi = 0.9) p =
  List.init points (fun i ->
      let u =
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1))
      in
      (u, run { p with utilization = u }))
