module Prng = Lfs_util.Prng

type t =
  | Uniform
  | Hot_cold of { hot_fraction : float; hot_traffic : float }
  | Cyclic

let default_hot_cold = Hot_cold { hot_fraction = 0.1; hot_traffic = 0.9 }

let sampler t ~nfiles prng =
  assert (nfiles > 0);
  match t with
  | Uniform -> fun () -> Prng.int prng nfiles
  | Cyclic ->
      let next = ref 0 in
      fun () ->
        let f = !next in
        next := (f + 1) mod nfiles;
        f
  | Hot_cold { hot_fraction; hot_traffic } ->
      let nhot = max 1 (int_of_float (hot_fraction *. float_of_int nfiles)) in
      let ncold = max 1 (nfiles - nhot) in
      fun () ->
        if Prng.bernoulli prng ~p:hot_traffic then Prng.int prng nhot
        else nhot + Prng.int prng ncold

let name = function
  | Uniform -> "uniform"
  | Cyclic -> "cyclic"
  | Hot_cold { hot_fraction; hot_traffic } ->
      Printf.sprintf "hot-and-cold %.0f/%.0f" (hot_traffic *. 100.0)
        (hot_fraction *. 100.0)
