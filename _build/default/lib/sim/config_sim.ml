type selection = Greedy | Cost_benefit
type grouping = In_order | Age_sort

let selection_name = function
  | Greedy -> "greedy"
  | Cost_benefit -> "cost-benefit"

let grouping_name = function In_order -> "in-order" | Age_sort -> "age-sort"

let benefit_cost ~u ~age = (1.0 -. u) *. age /. (1.0 +. u)
