(** File access patterns of the Section 3.5 simulator. *)

type t =
  | Uniform
      (** every file equally likely at every step *)
  | Hot_cold of { hot_fraction : float; hot_traffic : float }
      (** [hot_fraction] of the files receive [hot_traffic] of the
          writes; the paper's default is 10% of files getting 90% of
          writes.  Within each group the choice is uniform. *)
  | Cyclic
      (** files overwritten round-robin in creation order — the
          log-structured best case: by the time the log wraps around,
          every block of the oldest segment is dead, so cleaning is
          free (write cost 1.0) *)

val default_hot_cold : t
(** The paper's 90/10 pattern. *)

val sampler : t -> nfiles:int -> Lfs_util.Prng.t -> unit -> int
(** [sampler t ~nfiles prng] returns a generator of file indices in
    [\[0, nfiles)].  Hot files occupy the low indices. *)

val name : t -> string
