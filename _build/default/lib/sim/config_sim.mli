(** Cleaning-policy knobs of the simulator (kept separate from
    {!Lfs_core.Config} so the simulator has no dependency on the full
    file system). *)

type selection =
  | Greedy        (** least-utilised segments first *)
  | Cost_benefit  (** max (1-u)*age/(1+u) *)

type grouping =
  | In_order  (** live blocks rewritten in the order encountered *)
  | Age_sort  (** live blocks sorted by age before rewriting *)

val selection_name : selection -> string
val grouping_name : grouping -> string

val benefit_cost : u:float -> age:float -> float
