(** The file-system simulator of Section 3.5.

    The model is deliberately harsh (the paper says so): a fixed
    population of single-block 4 KB files; at every step one file is
    overwritten in its entirety according to an access pattern; no reads.
    Overall disk capacity utilisation is exactly [nfiles / capacity] and
    stays constant.  The simulator runs the writer until clean segments
    are exhausted, then cleans segments back up to a threshold, exactly
    as described in the paper, and reports steady-state write cost and
    the segment-utilisation distribution seen by the cleaner
    (Figures 4-7). *)

type policy = {
  selection : Config_sim.selection;
  grouping : Config_sim.grouping;
}

type params = {
  nsegs : int;             (** segments on the simulated disk *)
  blocks_per_seg : int;    (** 4 KB file slots per segment *)
  utilization : float;     (** overall disk capacity utilisation *)
  pattern : Access.t;
  policy : policy;
  clean_low : int;         (** start cleaning below this many clean segs *)
  clean_high : int;        (** clean until this many clean segs *)
  segs_per_pass : int;     (** victims selected per pass *)
  warmup_writes : int;     (** steps discarded before measurement *)
  measured_writes : int;
  seed : int;
}

val default_params : params
(** 256 segments x 256 blocks (the paper's 1 MB segments of 4 KB files),
    75% utilisation, uniform access, greedy in-order cleaning, and a
    small clean-segment reserve — the calibration that reproduces the
    published curves. *)

type result = {
  write_cost : float;
      (** (new + cleaner reads + cleaner writes) / new, whole-segment
          reads, empty segments not read *)
  avg_cleaned_u : float;   (** mean utilisation of segments cleaned *)
  segments_cleaned : int;
  cleaner_histogram : Lfs_util.Histogram.t;
      (** utilisations of all cleanable segments, sampled every time
          cleaning is initiated — the distributions of Figures 5-6 *)
  final_histogram : Lfs_util.Histogram.t;
      (** utilisation snapshot at the end of the run *)
}

val run : params -> result

val sweep_utilization :
  ?points:int -> ?lo:float -> ?hi:float -> params -> (float * result) list
(** Run at several overall utilisations (x-axis of Figures 4 and 7). *)
