lib/sim/access.ml: Lfs_util Printf
