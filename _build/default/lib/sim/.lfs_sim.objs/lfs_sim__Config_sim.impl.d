lib/sim/config_sim.ml:
