lib/sim/write_cost.mli:
