lib/sim/write_cost.ml: Array
