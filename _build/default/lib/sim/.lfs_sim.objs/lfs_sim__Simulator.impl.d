lib/sim/simulator.ml: Access Array Config_sim Float Lfs_util List
