lib/sim/simulator.mli: Access Config_sim Lfs_util
