lib/sim/config_sim.mli:
