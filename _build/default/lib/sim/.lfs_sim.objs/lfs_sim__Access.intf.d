lib/sim/access.mli: Lfs_util
