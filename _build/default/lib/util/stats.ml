type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let percentile data p =
  assert (Array.length data > 0);
  assert (p >= 0.0 && p <= 1.0);
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let mean_of xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
