(** Terminal line plots for figure reproduction.

    Each figure in the paper's evaluation is rendered as an ASCII chart so
    [bench/main.exe] output can be compared to the paper at a glance.
    Multiple series share one canvas; each series is drawn with its own
    glyph and listed in a legend. *)

type series = {
  label : string;
  points : (float * float) array;  (** (x, y), need not be sorted *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?y_max:float ->
  title:string ->
  series list ->
  string
(** Render the series onto a [width] x [height] character canvas with
    axes, tick labels and a legend.  [y_max] clamps the y range (useful
    when a series diverges, e.g. write cost as u -> 1). *)

val print :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?y_max:float ->
  title:string ->
  series list ->
  unit
