(** Little-endian binary encoding helpers shared by all on-disk formats.

    A {!cursor} wraps a [bytes] buffer with a mutable offset; [put_*]
    functions advance it while writing, [get_*] while reading.  Bounds
    errors raise {!Overflow} rather than a generic [Invalid_argument] so
    corrupt images are reported precisely. *)

exception Overflow of string
(** Raised when an encode or decode runs past the end of the buffer. *)

type cursor

val writer : bytes -> cursor
(** Cursor positioned at offset 0 for writing into the buffer. *)

val reader : bytes -> cursor
(** Cursor positioned at offset 0 for reading from the buffer. *)

val at : bytes -> int -> cursor
(** Cursor at an explicit offset. *)

val pos : cursor -> int
val seek : cursor -> int -> unit
val remaining : cursor -> int

val put_u8 : cursor -> int -> unit
val put_u16 : cursor -> int -> unit
val put_u32 : cursor -> int -> unit
val put_u64 : cursor -> int64 -> unit
val put_int : cursor -> int -> unit
(** 63-bit OCaml int as a signed 64-bit field. *)

val put_float : cursor -> float -> unit
val put_string : cursor -> string -> unit
(** Length-prefixed (u16) string. *)

val put_raw : cursor -> bytes -> unit

val get_u8 : cursor -> int
val get_u16 : cursor -> int
val get_u32 : cursor -> int
val get_u64 : cursor -> int64
val get_int : cursor -> int
val get_float : cursor -> float
val get_string : cursor -> string
val get_raw : cursor -> int -> bytes
