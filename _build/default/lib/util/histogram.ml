type t = { counts : float array; mutable total : float }

let create ~bins =
  assert (bins > 0);
  { counts = Array.make bins 0.0; total = 0.0 }

let clamp x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let bin_of t x =
  let n = Array.length t.counts in
  let i = int_of_float (clamp x *. float_of_int n) in
  if i >= n then n - 1 else i

let add_weighted t x w =
  t.counts.(bin_of t x) <- t.counts.(bin_of t x) +. w;
  t.total <- t.total +. w

let add t x = add_weighted t x 1.0

let bins t = Array.length t.counts
let total t = t.total

let fraction t i =
  if t.total = 0.0 then 0.0 else t.counts.(i) /. t.total

let bin_center t i =
  let n = float_of_int (Array.length t.counts) in
  (float_of_int i +. 0.5) /. n

let to_series t =
  Array.init (Array.length t.counts) (fun i -> (bin_center t i, fraction t i))

let merge a b =
  assert (Array.length a.counts = Array.length b.counts);
  let counts = Array.mapi (fun i c -> c +. b.counts.(i)) a.counts in
  { counts; total = a.total +. b.total }

let pp ppf t =
  Array.iteri
    (fun i _ ->
      Format.fprintf ppf "%.3f %.5f@." (bin_center t i) (fraction t i))
    t.counts
