exception Overflow of string

type cursor = { buf : bytes; mutable off : int }

let writer buf = { buf; off = 0 }
let reader buf = { buf; off = 0 }
let at buf off = { buf; off }

let pos c = c.off
let seek c off = c.off <- off
let remaining c = Bytes.length c.buf - c.off

let check c n what =
  if c.off + n > Bytes.length c.buf then
    raise
      (Overflow
         (Printf.sprintf "%s: need %d bytes at offset %d, buffer has %d" what n
            c.off (Bytes.length c.buf)))

let put_u8 c v =
  check c 1 "put_u8";
  Bytes.unsafe_set c.buf c.off (Char.unsafe_chr (v land 0xff));
  c.off <- c.off + 1

let put_u16 c v =
  check c 2 "put_u16";
  Bytes.set_uint16_le c.buf c.off (v land 0xffff);
  c.off <- c.off + 2

let put_u32 c v =
  check c 4 "put_u32";
  Bytes.set_int32_le c.buf c.off (Int32.of_int v);
  c.off <- c.off + 4

let put_u64 c v =
  check c 8 "put_u64";
  Bytes.set_int64_le c.buf c.off v;
  c.off <- c.off + 8

let put_int c v = put_u64 c (Int64.of_int v)
let put_float c v = put_u64 c (Int64.bits_of_float v)

let put_string c s =
  let n = String.length s in
  if n > 0xffff then raise (Overflow "put_string: string longer than 65535");
  put_u16 c n;
  check c n "put_string";
  Bytes.blit_string s 0 c.buf c.off n;
  c.off <- c.off + n

let put_raw c b =
  let n = Bytes.length b in
  check c n "put_raw";
  Bytes.blit b 0 c.buf c.off n;
  c.off <- c.off + n

let get_u8 c =
  check c 1 "get_u8";
  let v = Char.code (Bytes.unsafe_get c.buf c.off) in
  c.off <- c.off + 1;
  v

let get_u16 c =
  check c 2 "get_u16";
  let v = Bytes.get_uint16_le c.buf c.off in
  c.off <- c.off + 2;
  v

let get_u32 c =
  check c 4 "get_u32";
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.off) land 0xffffffff in
  c.off <- c.off + 4;
  v

let get_u64 c =
  check c 8 "get_u64";
  let v = Bytes.get_int64_le c.buf c.off in
  c.off <- c.off + 8;
  v

let get_int c = Int64.to_int (get_u64 c)
let get_float c = Int64.float_of_bits (get_u64 c)

let get_string c =
  let n = get_u16 c in
  check c n "get_string";
  let s = Bytes.sub_string c.buf c.off n in
  c.off <- c.off + n;
  s

let get_raw c n =
  check c n "get_raw";
  let b = Bytes.sub c.buf c.off n in
  c.off <- c.off + n;
  b
