lib/util/bytes_codec.mli:
