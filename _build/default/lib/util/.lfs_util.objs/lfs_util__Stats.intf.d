lib/util/stats.mli:
