lib/util/table.mli:
