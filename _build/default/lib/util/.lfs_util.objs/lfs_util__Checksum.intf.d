lib/util/checksum.mli:
