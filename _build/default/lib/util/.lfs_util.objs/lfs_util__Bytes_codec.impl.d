lib/util/bytes_codec.ml: Bytes Char Int32 Int64 Printf String
