lib/util/plot.mli:
