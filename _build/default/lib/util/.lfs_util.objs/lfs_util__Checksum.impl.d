lib/util/checksum.ml: Bytes Char Int32
