lib/util/prng.mli:
