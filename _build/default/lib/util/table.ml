type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let normalize ncols row =
  let n = List.length row in
  if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")

let render ?title ~header ?align rows =
  let ncols = List.length header in
  let rows = List.map (normalize ncols) rows in
  let align =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let a = List.nth align i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit_row header;
  rule ();
  List.iter emit_row rows;
  rule ();
  Buffer.contents buf

let print ?title ~header ?align rows =
  print_string (render ?title ~header ?align rows)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
