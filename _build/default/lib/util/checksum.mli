(** Adler-32 checksums protecting on-disk metadata blocks (checkpoint
    regions and segment summaries), so torn or stale writes are detected
    during recovery instead of silently corrupting the file system. *)

val adler32 : ?pos:int -> ?len:int -> bytes -> int32
(** Checksum of [len] bytes of [b] starting at [pos] (defaults: whole
    buffer). *)

val adler32_string : string -> int32
