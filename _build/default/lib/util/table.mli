(** ASCII table rendering for benchmark reports. *)

type align = Left | Right

val render :
  ?title:string ->
  header:string list ->
  ?align:align list ->
  string list list ->
  string
(** [render ~header rows] lays the rows out in a box-drawn table.  Column
    widths adapt to the contents; [align] defaults to left for the first
    column and right for the rest.  Rows shorter than the header are
    padded with empty cells. *)

val print :
  ?title:string ->
  header:string list ->
  ?align:align list ->
  string list list ->
  unit
(** Same as {!render} but writes to standard output. *)

val fmt_float : ?decimals:int -> float -> string
(** Compact float formatting for cells (default 2 decimals). *)
