(** Deterministic pseudo-random number generation.

    All stochastic components of the library (workload generators, the
    cleaning-policy simulator, property tests) draw from this module so
    that every experiment is reproducible from a seed.  The generator is
    SplitMix64, which is fast, has a full 64-bit state, and allows cheap
    independent substreams via {!split}. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives an independent substream and advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto-distributed sample; used for heavy-tailed file sizes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)
