(** Fixed-bin histograms over [\[0, 1\]], used for the segment-utilisation
    distributions of Figures 5, 6 and 10. *)

type t

val create : bins:int -> t
(** [create ~bins] makes an empty histogram with [bins] equal-width bins
    covering [\[0, 1\]].  Requires [bins > 0]. *)

val add : t -> float -> unit
(** [add t x] records [x]; values are clamped into [\[0, 1\]]. *)

val add_weighted : t -> float -> float -> unit
(** [add_weighted t x w] records [x] with weight [w]. *)

val bins : t -> int
val total : t -> float

val fraction : t -> int -> float
(** [fraction t i] is the weight in bin [i] divided by the total weight
    (0 when the histogram is empty). *)

val bin_center : t -> int -> float
(** Mid-point of bin [i] on the x axis. *)

val to_series : t -> (float * float) array
(** [(x, fraction)] pairs for plotting, one per bin. *)

val merge : t -> t -> t
(** Pointwise sum; both histograms must have the same number of bins. *)

val pp : Format.formatter -> t -> unit
