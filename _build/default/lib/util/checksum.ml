let base = 65521

let adler32 ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  let a = ref 1 and bsum = ref 0 in
  for i = pos to pos + len - 1 do
    a := (!a + Char.code (Bytes.unsafe_get b i)) mod base;
    bsum := (!bsum + !a) mod base
  done;
  Int32.logor
    (Int32.shift_left (Int32.of_int !bsum) 16)
    (Int32.of_int !a)

let adler32_string s = adler32 (Bytes.unsafe_of_string s)
