(** Streaming summary statistics (Welford's algorithm) and small helpers
    used by benchmark reports. *)

type t
(** A mutable accumulator of floating-point observations. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
val total : t -> float

val mean : t -> float
(** Mean of the observations; 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [\[0,1\]] computes the p-th percentile
    by linear interpolation.  Sorts a copy; [data] must be non-empty. *)

val mean_of : float list -> float
