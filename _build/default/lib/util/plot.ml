type series = { label : string; points : (float * float) array }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let finite x = Float.is_finite x

let bounds ?(y_max = infinity) series =
  let x_min = ref infinity and x_max = ref neg_infinity in
  let y_min = ref infinity and y_hi = ref neg_infinity in
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) ->
          if finite x && finite y then begin
            if x < !x_min then x_min := x;
            if x > !x_max then x_max := x;
            let y = Float.min y y_max in
            if y < !y_min then y_min := y;
            if y > !y_hi then y_hi := y
          end)
        s.points)
    series;
  if not (finite !x_min) then (0.0, 1.0, 0.0, 1.0)
  else begin
    let y_min = Float.min !y_min 0.0 in
    let x_max = if !x_max = !x_min then !x_min +. 1.0 else !x_max in
    let y_hi = if !y_hi = y_min then y_min +. 1.0 else !y_hi in
    (!x_min, x_max, y_min, y_hi)
  end

let render ?(width = 64) ?(height = 20) ?(x_label = "") ?(y_label = "")
    ?(y_max = infinity) ~title series =
  let x_min, x_max, y_min, y_hi = bounds ~y_max series in
  let canvas = Array.make_matrix height width ' ' in
  let plot_series idx s =
    let glyph = glyphs.(idx mod Array.length glyphs) in
    Array.iter
      (fun (x, y) ->
        if finite x && finite y then begin
          let y = Float.min y y_max in
          let cx =
            int_of_float
              ((x -. x_min) /. (x_max -. x_min) *. float_of_int (width - 1))
          in
          let cy =
            int_of_float
              ((y -. y_min) /. (y_hi -. y_min) *. float_of_int (height - 1))
          in
          let cy = height - 1 - cy in
          if cx >= 0 && cx < width && cy >= 0 && cy < height then
            canvas.(cy).(cx) <- glyph
        end)
      s.points
  in
  List.iteri plot_series series;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  if y_label <> "" then begin
    Buffer.add_string buf y_label;
    Buffer.add_char buf '\n'
  end;
  for row = 0 to height - 1 do
    let y_val =
      y_hi -. (float_of_int row /. float_of_int (height - 1) *. (y_hi -. y_min))
    in
    Buffer.add_string buf (Printf.sprintf "%8.2f |" y_val);
    Buffer.add_string buf (String.init width (fun c -> canvas.(row).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 9 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%9s %-8.2f%s%8.2f\n" "" x_min
       (String.make (max 1 (width - 16)) ' ')
       x_max);
  if x_label <> "" then
    Buffer.add_string buf (Printf.sprintf "%*s%s\n" ((width / 2) + 5) "" x_label);
  List.iteri
    (fun idx s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c = %s\n" glyphs.(idx mod Array.length glyphs) s.label))
    series;
  Buffer.contents buf

let print ?width ?height ?x_label ?y_label ?y_max ~title series =
  print_string (render ?width ?height ?x_label ?y_label ?y_max ~title series)
