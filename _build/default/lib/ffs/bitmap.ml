type t = { data : Bytes.t; bits : int }

let create ~bits = { data = Bytes.make ((bits + 7) / 8) '\000'; bits }

let of_bytes b ~bits = { data = Bytes.sub b 0 ((bits + 7) / 8); bits }

let to_bytes t ~block_size =
  let b = Bytes.make block_size '\000' in
  Bytes.blit t.data 0 b 0 (Bytes.length t.data);
  b

let bits t = t.bits

let check t i =
  if i < 0 || i >= t.bits then invalid_arg (Printf.sprintf "Bitmap: bit %d" i)

let get t i =
  check t i;
  Char.code (Bytes.get t.data (i / 8)) land (1 lsl (i mod 8)) <> 0

let set t i =
  check t i;
  Bytes.set t.data (i / 8)
    (Char.chr (Char.code (Bytes.get t.data (i / 8)) lor (1 lsl (i mod 8))))

let clear t i =
  check t i;
  Bytes.set t.data (i / 8)
    (Char.chr (Char.code (Bytes.get t.data (i / 8)) land lnot (1 lsl (i mod 8)) land 0xff))

let popcount t =
  let n = ref 0 in
  for i = 0 to t.bits - 1 do
    if get t i then incr n
  done;
  !n

let find_free_from t hint =
  let hint = if t.bits = 0 then 0 else ((hint mod t.bits) + t.bits) mod t.bits in
  let rec scan tried i =
    if tried >= t.bits then None
    else
      let i = if i >= t.bits then 0 else i in
      if not (get t i) then Some i else scan (tried + 1) (i + 1)
  in
  scan 0 hint
