(** A block-backed allocation bitmap (one per cylinder group). *)

type t

val create : bits:int -> t
(** All bits clear (free). *)

val of_bytes : bytes -> bits:int -> t
val to_bytes : t -> block_size:int -> bytes

val bits : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val popcount : t -> int
(** Number of set (allocated) bits. *)

val find_free_from : t -> int -> int option
(** First clear bit at index >= the hint, wrapping around; [None] when
    the bitmap is full. *)
