lib/ffs/bitmap.mli:
