lib/ffs/ffs.ml: Array Bitmap Bytes Hashtbl Lfs_core Lfs_disk Lfs_util List String
