lib/ffs/bitmap.ml: Bytes Char Printf
