lib/ffs/ffs.mli: Lfs_core Lfs_disk
