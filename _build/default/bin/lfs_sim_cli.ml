(* lfs_sim_cli: run the Section 3.5 cleaning-policy simulator from the
   command line.

     lfs_sim_cli --utilization 0.75 --pattern hot-cold --policy cost-benefit
     lfs_sim_cli --sweep --pattern uniform --policy greedy
     lfs_sim_cli --histogram ...   # print the cleaner-visible distribution *)

open Cmdliner

module Sim = Lfs_sim.Simulator
module Access = Lfs_sim.Access
module Csim = Lfs_sim.Config_sim

let pattern_conv =
  let parse = function
    | "uniform" -> Ok Access.Uniform
    | "hot-cold" | "hot-and-cold" -> Ok Access.default_hot_cold
    | "cyclic" -> Ok Access.Cyclic
    | s -> Error (`Msg (Printf.sprintf "unknown pattern %S (uniform | hot-cold | cyclic)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Access.name p))

let policy_conv =
  let parse = function
    | "greedy" -> Ok Csim.Greedy
    | "cost-benefit" -> Ok Csim.Cost_benefit
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (greedy | cost-benefit)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Csim.selection_name p))

let grouping_conv =
  let parse = function
    | "in-order" -> Ok Csim.In_order
    | "age-sort" -> Ok Csim.Age_sort
    | s -> Error (`Msg (Printf.sprintf "unknown grouping %S (in-order | age-sort)" s))
  in
  Arg.conv (parse, fun ppf g -> Format.pp_print_string ppf (Csim.grouping_name g))

let run utilization pattern policy grouping nsegs spseg writes sweep histogram seed =
  let params =
    {
      Sim.default_params with
      utilization;
      pattern;
      policy = { Sim.selection = policy; grouping };
      nsegs;
      blocks_per_seg = spseg;
      warmup_writes = writes * 3 / 4;
      measured_writes = writes / 4;
      seed;
    }
  in
  if sweep then begin
    Printf.printf "# util  write_cost  avg_cleaned_u\n";
    List.iter
      (fun (u, r) ->
        Printf.printf "%.3f  %7.3f  %7.3f\n" u r.Sim.write_cost r.Sim.avg_cleaned_u)
      (Sim.sweep_utilization ~points:8 ~lo:0.15 ~hi:0.9 params)
  end
  else begin
    let r = Sim.run params in
    Printf.printf "pattern: %s, policy: %s + %s\n" (Access.name pattern)
      (Csim.selection_name policy)
      (Csim.grouping_name grouping);
    Printf.printf "write cost      %.3f\n" r.Sim.write_cost;
    Printf.printf "avg cleaned u   %.3f\n" r.Sim.avg_cleaned_u;
    Printf.printf "segments cleaned %d\n" r.Sim.segments_cleaned;
    if histogram then begin
      Printf.printf "\ncleaner-visible utilisation distribution:\n";
      Array.iter
        (fun (x, f) ->
          Printf.printf "%.2f %s\n" x (String.make (int_of_float (f *. 400.0)) '#'))
        (Lfs_util.Histogram.to_series r.Sim.cleaner_histogram)
    end
  end

let cmd =
  let utilization =
    Arg.(value & opt float 0.75 & info [ "u"; "utilization" ] ~doc:"Disk capacity utilisation")
  in
  let pattern =
    Arg.(value & opt pattern_conv Access.Uniform & info [ "pattern" ] ~doc:"Access pattern")
  in
  let policy =
    Arg.(value & opt policy_conv Csim.Greedy & info [ "policy" ] ~doc:"Victim selection policy")
  in
  let grouping =
    Arg.(value & opt grouping_conv Csim.In_order & info [ "grouping" ] ~doc:"Live-block grouping")
  in
  let nsegs = Arg.(value & opt int 256 & info [ "segments" ] ~doc:"Number of segments") in
  let spseg = Arg.(value & opt int 256 & info [ "blocks-per-segment" ] ~doc:"4 KB files per segment") in
  let writes = Arg.(value & opt int 4_000_000 & info [ "writes" ] ~doc:"Total simulated writes") in
  let sweep = Arg.(value & flag & info [ "sweep" ] ~doc:"Sweep utilisation instead of one run") in
  let histogram = Arg.(value & flag & info [ "histogram" ] ~doc:"Print the segment distribution") in
  let seed = Arg.(value & opt int 0xCAFE & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v
    (Cmd.info "lfs_sim_cli" ~doc:"log-structured file system cleaning-policy simulator")
    Term.(
      const run $ utilization $ pattern $ policy $ grouping $ nsegs $ spseg
      $ writes $ sweep $ histogram $ seed)

let () = exit (Cmd.eval cmd)
