bin/lfs_sim_cli.mli:
