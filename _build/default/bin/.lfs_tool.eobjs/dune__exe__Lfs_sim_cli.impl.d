bin/lfs_sim_cli.ml: Arg Array Cmd Cmdliner Format Lfs_sim Lfs_util List Printf String Term
