bin/lfs_tool.mli:
