bin/lfs_tool.ml: Arg Bytes Cmd Cmdliner Filename Format Fun Lfs_core Lfs_disk Lfs_workload List Option Printf String Term
